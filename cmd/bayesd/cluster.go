package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bayessuite/internal/cluster"
	"bayessuite/internal/fault"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/serve"
)

// runCoordinator boots the fleet control plane: calibrate the LLC
// predictor, start the coordinator (durable when stateDir is set — its
// journal replays before any lease is granted, while /readyz reports
// "recovering"), and serve the client API plus the /cluster/v1 worker
// protocol until a signal drains it.
func runCoordinator(addr string, queueCap int, seed uint64, node, stateDir string) error {
	pts, err := serve.SuiteCalibration(seed)
	if err != nil {
		return fmt.Errorf("calibrating predictor: %w", err)
	}
	co := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Node:              node,
		QueueCap:          queueCap,
		CalibrationPoints: pts,
		StateDir:          stateDir,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: co.Handler()}
	if stateDir != "" {
		fmt.Printf("bayesd: coordinator %s durable in %s\n", node, stateDir)
	}
	fmt.Printf("bayesd: coordinator %s listening on http://%s\n", node, ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("bayesd: %v: coordinator draining\n", sig)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := co.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bayesd: coordinator drain:", err)
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("bayesd: coordinator drained, bye")
	return nil
}

// runWorker boots one fleet worker: an embedded single-platform engine
// pulling work from the coordinator, its own API served on addr (the
// /readyz capability probe is how operators inspect a worker directly).
func runWorker(addr, coordinator, name, platform string, slots, retries int) error {
	plat, ok := hw.ByName(platform)
	if !ok {
		return fmt.Errorf("unknown platform %q (want Skylake or Broadwell)", platform)
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name:        name,
		Coordinator: coordinator,
		Platform:    plat,
		Slots:       slots,
		Engine:      serve.Config{MaxRetries: retries},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: w.Engine().Handler()}
	fmt.Printf("bayesd: worker %s (%s, %d slots) on http://%s, pulling from %s\n",
		name, plat.Codename, slots, ln.Addr(), coordinator)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("bayesd: %v: worker %s draining (running jobs finish and upload)\n", sig, name)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := w.Stop(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bayesd: worker drain:", err)
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Printf("bayesd: worker %s drained, bye\n", name)
	return nil
}

// runClusterSmoke is the `make cluster-smoke` body, in two phases.
//
// Phase 1 — fleet serving: a coordinator and two heterogeneous workers
// (Skylake + Broadwell) in one process over real HTTP; a job is
// submitted through the standard client API, placed by the fleet
// scheduler, run on a worker, and its result and fleet stats are
// verified, along with the content-negotiated /readyz capability probe.
//
// Phase 2 — the acceptance criterion: a job is started on worker A, an
// injected WorkerLoss fault kills A mid-run (after checkpoint uploads),
// the coordinator reaps A by heartbeat silence and requeues the job from
// its last checkpoint, worker B (started only after the kill) picks it
// up, and the final draws are compared bit for bit against the same spec
// run uninterrupted on a single node.
func runClusterSmoke(seed uint64) error {
	if err := smokeFleetServing(seed); err != nil {
		return fmt.Errorf("phase 1 (fleet serving): %w", err)
	}
	fmt.Println("bayesd: cluster phase 1 (fleet serving) ok")
	if err := smokeMigration(seed); err != nil {
		return fmt.Errorf("phase 2 (worker-loss migration): %w", err)
	}
	fmt.Println("bayesd: cluster phase 2 (worker-loss migration, bit-identical draws) ok")
	return nil
}

// startCoordinator boots a coordinator on a random port, returning it,
// its base URL, and the HTTP server.
func startCoordinator(cfg cluster.CoordinatorConfig) (*cluster.Coordinator, string, *http.Server, error) {
	co := cluster.NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: co.Handler()}
	go hs.Serve(ln)
	return co, fmt.Sprintf("http://%s", ln.Addr()), hs, nil
}

func smokeFleetServing(seed uint64) error {
	pts, err := serve.SuiteCalibration(seed)
	if err != nil {
		return fmt.Errorf("calibrating predictor: %w", err)
	}
	co, base, hs, err := startCoordinator(cluster.CoordinatorConfig{
		CalibrationPoints: pts,
		HeartbeatTimeout:  800 * time.Millisecond,
		ReapInterval:      100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer hs.Close()
	fmt.Printf("bayesd: smoke coordinator on %s\n", base)

	mk := func(name string, plat hw.Platform) (*cluster.Worker, error) {
		return cluster.NewWorker(cluster.WorkerConfig{
			Name: name, Coordinator: base, Platform: plat, Slots: 2,
			LeaseInterval: 20 * time.Millisecond, HeartbeatInterval: 100 * time.Millisecond,
			Engine: serve.Config{CheckpointEvery: 50},
		})
	}
	w1, err := mk("skylake-1", hw.Skylake)
	if err != nil {
		return err
	}
	w2, err := mk("broadwell-1", hw.Broadwell)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// The capability probe: bare body for old clients, full document
	// under Accept: application/json.
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: %d, want 200", resp.StatusCode)
	}
	fmt.Printf("bayesd: coordinator capability: %s", body)

	// Wait until both workers have polled in, so the placement below runs
	// over the full fleet rather than whoever registered first.
	for {
		if len(co.Workers()) >= 2 {
			break
		}
		select {
		case <-ctx.Done():
			return errors.New("timed out waiting for workers to register")
		case <-time.After(10 * time.Millisecond):
		}
	}

	client := serve.NewClient(base)
	st, err := client.Submit(ctx, serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: seed, Iterations: 2000,
	})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	final, err := client.Wait(ctx, st.ID, 25*time.Millisecond)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if final.State != serve.Done {
		return fmt.Errorf("job ended %s (%s), want done", final.State, final.Error)
	}
	if final.Placement == nil || final.Placement.Node == "" {
		return errors.New("no fleet placement recorded")
	}
	fmt.Printf("bayesd: placed on %s — %s\n", final.Placement.Node, final.Placement.Reason)
	// The small job fits both nodes' scaled LLC thresholds, so the
	// paper's frequency rule picks the 4.2 GHz Skylake over the 3.6 GHz
	// Broadwell.
	if final.Node != "skylake-1" {
		return fmt.Errorf("job ran on %q, want skylake-1 (frequency-first among fitting nodes)", final.Node)
	}
	res, err := client.Result(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	if len(res.Summaries) == 0 {
		return errors.New("no posterior summaries")
	}

	// Fleet stats must aggregate both workers.
	sresp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return err
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	fs := co.ServiceStats().(cluster.FleetStats)
	if fs.Workers < 2 || fs.Done < 1 {
		return fmt.Errorf("fleet stats: %d workers, %d done (want ≥2, ≥1): %s", fs.Workers, fs.Done, sbody)
	}
	fmt.Printf("bayesd: fleet stats: %d workers (%d healthy), %d done, saved %d iterations\n",
		fs.Workers, fs.Healthy, fs.Done, fs.SavedIterations)

	// Graceful drain: worker 1 leaves; the fleet keeps serving.
	if err := w1.Stop(ctx); err != nil {
		return fmt.Errorf("worker drain: %w", err)
	}
	if err := w2.Stop(ctx); err != nil {
		return fmt.Errorf("worker drain: %w", err)
	}
	return co.Shutdown(ctx)
}

func smokeMigration(seed uint64) error {
	spec := serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: seed,
		Iterations: 160, NoElide: true, Speculate: true,
	}
	const checkpointEvery = 20
	const killAtIter = 60

	// Reference: the same spec, uninterrupted, on a single node.
	ref := serve.NewServer(serve.Config{Workers: 1, CheckpointEvery: checkpointEvery})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	refJob, err := ref.Submit(spec)
	if err != nil {
		return fmt.Errorf("reference submit: %w", err)
	}
	<-refJob.Done()
	refRaw := refJob.Raw()
	if refRaw == nil {
		return errors.New("reference run has no raw result")
	}
	refDraws := cluster.EncodeDraws(refRaw)
	if err := ref.Shutdown(ctx); err != nil {
		return fmt.Errorf("reference shutdown: %w", err)
	}

	co, base, hs, err := startCoordinator(cluster.CoordinatorConfig{
		HeartbeatTimeout: 250 * time.Millisecond,
		ReapInterval:     50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer hs.Close()

	// Worker A carries the scheduled fault: WorkerLoss at (chain 0, iter
	// 60). Checkpoints upload synchronously every 20 iterations, so the
	// coordinator holds the iteration-40 snapshot when A dies.
	var w1 *cluster.Worker
	inj := fault.New(seed).Schedule(0, killAtIter, fault.WorkerLoss)
	w1, err = cluster.NewWorker(cluster.WorkerConfig{
		Name: "doomed", Coordinator: base, Platform: hw.Skylake,
		LeaseInterval: 10 * time.Millisecond, HeartbeatInterval: 40 * time.Millisecond,
		Engine: serve.Config{
			CheckpointEvery: checkpointEvery,
			InjectFaultHook: func(job *serve.Job, attempt int) func(chain, iter int) mcmc.FaultAction {
				return inj.Hook
			},
		},
	})
	if err != nil {
		return err
	}
	inj.WithWorkerKill(func() { w1.Kill() })

	client := serve.NewClient(base)
	st, err := client.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}

	// Wait for the kill to land and the coordinator to reap worker A.
	for {
		fs := co.ServiceStats().(cluster.FleetStats)
		if fs.Reaped >= 1 && fs.Migrations >= 1 {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for worker loss (reaped %d, migrations %d)",
				fs.Reaped, fs.Migrations)
		case <-time.After(20 * time.Millisecond):
		}
	}
	fmt.Println("bayesd: worker 'doomed' killed mid-run and reaped; job requeued from checkpoint")

	// Only now does the rescue worker exist: the resumed run cannot have
	// started anywhere before the loss.
	w2, err := cluster.NewWorker(cluster.WorkerConfig{
		Name: "rescue", Coordinator: base, Platform: hw.Broadwell,
		LeaseInterval: 10 * time.Millisecond, HeartbeatInterval: 40 * time.Millisecond,
		Engine: serve.Config{CheckpointEvery: checkpointEvery},
	})
	if err != nil {
		return err
	}

	final, err := client.Wait(ctx, st.ID, 25*time.Millisecond)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if final.State != serve.Done {
		return fmt.Errorf("migrated job ended %s (%s), want done", final.State, final.Error)
	}
	if final.Node != "rescue" {
		return fmt.Errorf("migrated job finished on %q, want rescue", final.Node)
	}
	if final.Attempts < 2 {
		return fmt.Errorf("job took %d lease(s), want ≥2 (one per worker)", final.Attempts)
	}
	// Bit-identity alone can't distinguish a checkpoint resume from a
	// deterministic restart; ResumedFrom can.
	if final.ResumedFrom <= 0 {
		return fmt.Errorf("final lease resumed from iteration %d, want >0 (checkpoint migration)", final.ResumedFrom)
	}

	dresp, err := http.Get(base + "/cluster/v1/jobs/" + st.ID + "/draws")
	if err != nil {
		return err
	}
	migDraws, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return fmt.Errorf("draws: %d, want 200", dresp.StatusCode)
	}
	if !cluster.DrawsEqual(refDraws, migDraws) {
		return fmt.Errorf("migrated draws differ from uninterrupted reference (%d vs %d bytes)",
			len(migDraws), len(refDraws))
	}
	fmt.Printf("bayesd: migrated draws bit-identical to uninterrupted reference (%d bytes, %d chains × %d iterations)\n",
		len(migDraws), final.Spec.Chains, final.Progress)

	// The job speculated; the rescue worker's heartbeat stats must carry
	// the prefetch counters into the fleet rollup.
	for {
		fs := co.ServiceStats().(cluster.FleetStats)
		if fs.SpecRows > 0 && fs.SpecCommitted+fs.SpecDiscarded == fs.SpecRows {
			fmt.Printf("bayesd: fleet speculation counters: %d rows, %d committed (hit rate %.2f, effective occupancy %.2f)\n",
				fs.SpecRows, fs.SpecCommitted, fs.SpecHitRate, fs.EffectiveBatchOccupancy)
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for speculation counters in fleet stats (rows %d, committed %d, discarded %d)",
				fs.SpecRows, fs.SpecCommitted, fs.SpecDiscarded)
		case <-time.After(20 * time.Millisecond):
		}
	}

	if err := w2.Stop(ctx); err != nil {
		return fmt.Errorf("rescue drain: %w", err)
	}
	return co.Shutdown(ctx)
}
