// Command bayesd is the BayesSuite inference daemon: a long-lived HTTP
// service that admits inference jobs through a bounded queue, places each
// on a simulated platform with the LLC-aware scheduler (§V), samples with
// runtime convergence elision (§VI), and reports live progress, R̂
// trajectories, posterior summaries, and aggregate savings.
//
// Usage:
//
//	bayesd [-addr 127.0.0.1:8080] [-queue 64] [-workers 2]
//	       [-timeout 0] [-seed 7] [-retries 2]
//	bayesd -smoke          # boot on a random port, run one job end-to-end
//	bayesd -coordinator [-node NAME] [-state-dir DIR]   # fleet control plane
//	bayesd -worker URL [-node NAME] [-platform P] [-slots N]
//	bayesd -cluster-smoke  # coordinator + 2 workers + migration self-test
//	bayesd -crash-smoke    # SIGKILL a durable coordinator mid-run; restart;
//	                       # draws must be bit-identical to an unfaulted run
//
// With -state-dir the coordinator is durable: every acknowledged state
// transition (admit, lease, checkpoint, result, cancel, requeue) is
// journaled and fsynced under DIR before the acknowledgment leaves, with
// checkpoints and result draws in a content-addressed blob store. A
// coordinator restarted on the same DIR replays the journal, reports
// "recovering" on /readyz until done, and requeues unfinished jobs from
// their newest fingerprint-verified checkpoints — clients keep their job
// IDs, and the deterministic sampler contract makes the re-run draws
// bit-identical to an uninterrupted run.
//
// In cluster mode the coordinator serves the same client API as a single
// node plus the /cluster/v1 worker protocol; workers pull leases from it,
// heartbeat, stream checkpoints, and upload results, so a job migrates
// off a lost worker with bit-identical draws (see internal/cluster).
//
// Jobs whose every chain is quarantined (panic, non-finite density,
// divergence storm) are retried up to -retries times from their last
// all-healthy checkpoint, with capped exponential backoff. GET /healthz
// is liveness (200 while the process serves); GET /readyz is readiness
// (503 once a drain begins).
//
// On SIGINT/SIGTERM the daemon drains: admission stops (503), queued
// jobs and pending retries are canceled, running jobs complete.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bayessuite/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	queueCap := flag.Int("queue", 64, "admission queue capacity")
	workers := flag.Int("workers", 2, "concurrent job runners")
	timeout := flag.Duration("timeout", 0, "default per-job timeout (0: none)")
	seed := flag.Uint64("seed", 7, "seed for the calibration datasets")
	retries := flag.Int("retries", 2, "retries per job when every chain faults (-1: disable)")
	smoke := flag.Bool("smoke", false, "self-test: boot on a random port, run a small job to completion, assert elision fired")
	coordinator := flag.Bool("coordinator", false, "run as cluster coordinator: admit jobs, shard them across pull-based workers")
	workerOf := flag.String("worker", "", "run as cluster worker pulling from the given coordinator URL")
	node := flag.String("node", "", "node name (default: coordinator / worker-<pid>)")
	platform := flag.String("platform", "Skylake", "simulated platform for -worker mode (Skylake or Broadwell)")
	slots := flag.Int("slots", 1, "concurrent job slots for -worker mode")
	clusterSmoke := flag.Bool("cluster-smoke", false, "self-test: coordinator + two workers in one process; verifies fleet placement and that a job migrated off a killed worker yields bit-identical draws")
	stateDir := flag.String("state-dir", "", "durable coordinator state directory (journal + blob store); a restarted coordinator replays it and resumes unfinished jobs from their checkpoints")
	crashSmoke := flag.Bool("crash-smoke", false, "self-test: SIGKILL a durable coordinator subprocess mid-run, restart it on the same -state-dir, and verify every job finishes with draws bit-identical to an uninterrupted run")
	flag.Parse()

	switch {
	case *smoke:
		if err := runSmoke(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "bayesd: SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("bayesd: SMOKE PASS")
	case *clusterSmoke:
		if err := runClusterSmoke(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "bayesd: CLUSTER SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("bayesd: CLUSTER SMOKE PASS")
	case *crashSmoke:
		if err := runCrashSmoke(*seed); err != nil {
			fmt.Fprintln(os.Stderr, "bayesd: CRASH SMOKE FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("bayesd: CRASH SMOKE PASS")
	case *coordinator:
		name := *node
		if name == "" {
			name = "coordinator"
		}
		if err := runCoordinator(*addr, *queueCap, *seed, name, *stateDir); err != nil {
			fmt.Fprintln(os.Stderr, "bayesd:", err)
			os.Exit(1)
		}
	case *workerOf != "":
		name := *node
		if name == "" {
			name = fmt.Sprintf("worker-%d", os.Getpid())
		}
		if err := runWorker(*addr, *workerOf, name, *platform, *slots, *retries); err != nil {
			fmt.Fprintln(os.Stderr, "bayesd:", err)
			os.Exit(1)
		}
	default:
		if err := run(*addr, *queueCap, *workers, *timeout, *seed, *retries); err != nil {
			fmt.Fprintln(os.Stderr, "bayesd:", err)
			os.Exit(1)
		}
	}
}

// boot calibrates the placement predictor and starts the server and its
// HTTP listener, returning the server and the bound address.
func boot(addr string, queueCap, workers int, timeout time.Duration, seed uint64, retries int) (*serve.Server, net.Listener, error) {
	pts, err := serve.SuiteCalibration(seed)
	if err != nil {
		return nil, nil, fmt.Errorf("calibrating predictor: %w", err)
	}
	srv := serve.NewServer(serve.Config{
		QueueCap:          queueCap,
		Workers:           workers,
		DefaultTimeout:    timeout,
		CalibrationPoints: pts,
		MaxRetries:        retries,
	})
	if fallback, note := srv.FrequencyFirst(); fallback {
		fmt.Printf("bayesd: placement: frequency-first fallback (%s)\n", note)
	} else {
		fmt.Printf("bayesd: placement: %s\n", note)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, ln, nil
}

func run(addr string, queueCap, workers int, timeout time.Duration, seed uint64, retries int) error {
	srv, ln, err := boot(addr, queueCap, workers, timeout, seed, retries)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("bayesd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("bayesd: %v: draining (running jobs complete, queued jobs cancel)\n", sig)
	}

	// Drain the job queue first so in-flight work lands, then close the
	// HTTP side.
	drainCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bayesd: drain:", err)
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("bayesd: drained, bye")
	return nil
}

// runSmoke is the `make serve-smoke` body: boot on a random port, submit
// a small 12cities job over real HTTP, poll it to completion, and assert
// that convergence elision fired and summaries came back.
func runSmoke(seed uint64) error {
	srv, ln, err := boot("127.0.0.1:0", 8, 2, 0, seed, 2)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	base := fmt.Sprintf("http://%s", ln.Addr())
	fmt.Printf("bayesd: smoke server on %s\n", base)
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			return fmt.Errorf("GET %s: %w", probe, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %d, want 200", probe, resp.StatusCode)
		}
	}
	fmt.Println("bayesd: healthz/readyz ok")
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	st, err := client.Submit(ctx, serve.JobSpec{
		Workload: "12cities", Scale: 0.25, Seed: 7, Iterations: 2000,
	})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Printf("bayesd: submitted %s (%s, budget %d)\n", st.ID, st.Spec.Workload, st.Budget)

	final, err := client.Wait(ctx, st.ID, 100*time.Millisecond)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if final.State != serve.Done {
		return fmt.Errorf("job ended %s (%s), want done", final.State, final.Error)
	}
	if final.Placement == nil {
		return errors.New("no placement decision recorded")
	}
	fmt.Printf("bayesd: placed on %s — %s\n", final.Placement.Platform, final.Placement.Reason)
	if !final.Elided {
		return fmt.Errorf("elision did not fire (progress %d/%d)", final.Progress, final.Budget)
	}
	fmt.Printf("bayesd: elision fired at %d/%d iterations (saved %d iterations, %.1f simulated J)\n",
		final.Progress, final.Budget, final.SavedIterations, final.SavedJoules)

	res, err := client.Result(ctx, st.ID)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	if len(res.Summaries) == 0 {
		return errors.New("no posterior summaries")
	}
	if len(final.RHatTrace) == 0 {
		return errors.New("no R-hat trajectory reported")
	}
	fmt.Printf("bayesd: max R-hat %.3f over %d params; %d convergence checks\n",
		res.MaxRHat, len(res.Summaries), len(final.RHatTrace))

	stats, err := client.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	fmt.Printf("bayesd: stats: %d done, saved %d iterations / %.1f J\n",
		stats.Done, stats.SavedIterations, stats.SavedJoules)
	return srv.Shutdown(ctx)
}
