// Command benchjson measures the fused-kernel gradient path against the
// legacy node-per-observation tape path for every kernel-backed registry
// workload, plus a large-N hierarchical Gaussian GLM that shows the
// asymptotic limit of the kernel layer, and writes the numbers as JSON.
//
// The output is deliberately timestamp-free so regenerating it on the
// same machine produces a reviewable diff of just the numbers.
//
// Usage:
//
//	benchjson [-o BENCH_2.json] [-o5 BENCH_5.json] [-o10 BENCH_10.json] [-scale 1.0] [-benchtime 1s]
//
// Three files come out: BENCH_2.json (fused kernel vs legacy tape, one
// chain), BENCH_5.json (cross-chain gradient batching: fused
// multi-chain sweeps vs independent per-chain evaluation, at the
// gradient layer and end to end on the lockstep runner), and
// BENCH_10.json (speculative leapfrog prefetching: the same lockstep
// runs with the coalescer's slot-filling speculation off vs on —
// occupancy split, cache hit rate, and the straggler-bound sweep
// conservation check).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"testing"

	"bayessuite/internal/ad"
	"bayessuite/internal/dist"
	"bayessuite/internal/kernels"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
	"bayessuite/internal/workloads"
)

// entry is one kernel-vs-tape comparison in the emitted JSON.
type entry struct {
	Workload      string  `json:"workload"`
	Dim           int     `json:"dim"`
	KernelNsOp    int64   `json:"kernel_ns_op"`
	TapeNsOp      int64   `json:"tape_ns_op"`
	KernelAllocs  int64   `json:"kernel_allocs_op"`
	TapeAllocs    int64   `json:"tape_allocs_op"`
	KernelSpeedup float64 `json:"kernel_speedup"`
}

type report struct {
	Description string  `json:"description"`
	Scale       float64 `json:"scale"`
	Entries     []entry `json:"entries"`
}

func main() {
	testing.Init() // registers test.* flags so test.benchtime can be set
	out := flag.String("o", "BENCH_2.json", "kernel-vs-tape output path")
	out5 := flag.String("o5", "BENCH_5.json", "cross-chain batching output path")
	out10 := flag.String("o10", "BENCH_10.json", "speculative prefetch output path")
	lockIters := flag.Int("lockstep-iters", 12, "iterations per end-to-end lockstep run")
	scale := flag.Float64("scale", 1.0, "workload dataset scale")
	benchtime := flag.Duration("benchtime", 0, "per-measurement budget (0 = testing default)")
	flag.Parse()
	if *benchtime > 0 {
		// testing.Benchmark honours the flag, not an API knob.
		if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	rep := report{
		Description: "gradient-evaluation cost: fused analytic kernels vs legacy node-per-observation tape",
		Scale:       *scale,
	}
	for _, w := range workloads.All(*scale, 3) {
		if !w.UsesKernels() {
			continue
		}
		rep.Entries = append(rep.Entries, measure(w.Info.Name, w.Model, w.TapeModel()))
	}
	rep.Entries = append(rep.Entries,
		measure("normal-glm-60k", newNormalGLM(true), newNormalGLM(false)))

	if err := writeJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d entries)\n", *out, len(rep.Entries))

	rep5 := batchReport(*lockIters)
	if err := writeJSON(*out5, rep5); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d gradient-layer entries, %d lockstep entries)\n",
		*out5, len(rep5.GradientLayer), len(rep5.Lockstep))

	rep10 := specReport(*lockIters)
	if err := writeJSON(*out10, rep10); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d lockstep entries)\n", *out10, len(rep10.Lockstep))
}

func writeJSON(path string, v any) error {

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return f.Close()
}

// measure times LogDensityGrad on both paths at a fixed off-origin point.
func measure(name string, kernel, tape model.Model) entry {
	e := entry{Workload: name, Dim: kernel.Dim()}
	kns, kallocs := gradBench(kernel)
	tns, tallocs := gradBench(tape)
	e.KernelNsOp, e.KernelAllocs = kns, kallocs
	e.TapeNsOp, e.TapeAllocs = tns, tallocs
	if kns > 0 {
		e.KernelSpeedup = float64(tns) / float64(kns)
	}
	return e
}

func gradBench(m model.Model) (nsOp, allocsOp int64) {
	ev := model.NewEvaluator(m)
	q := make([]float64, ev.Dim())
	grad := make([]float64, ev.Dim())
	for i := range q {
		q[i] = 0.1 * float64(i%7)
	}
	ev.LogDensityGrad(q, grad) // reach arena high-water marks
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.LogDensityGrad(q, grad)
		}
	})
	return r.NsPerOp(), r.AllocsPerOp()
}

// Large-N hierarchical Gaussian GLM (two covariates plus a group
// intercept, n = 60000): no per-observation transcendentals, so the
// taping overhead the kernel removes is the entire per-observation cost.
// Mirrors BenchmarkGradientNormalGLM* in internal/mcmc.
const (
	normalGLMN      = 60000
	normalGLMP      = 2
	normalGLMGroups = 300
)

type normalGLM struct {
	n, p, g int
	y, x    []float64
	group   []int
	kern    *kernels.NormalIDGLM // nil on the tape path
}

func newNormalGLM(kernel bool) *normalGLM {
	return newNormalGLMSized(normalGLMN, kernel)
}

func newNormalGLMSized(n int, kernel bool) *normalGLM {
	r := rng.New(41)
	m := &normalGLM{
		n: n, p: normalGLMP, g: normalGLMGroups,
		y:     make([]float64, n),
		x:     make([]float64, n*normalGLMP),
		group: make([]int, n),
	}
	beta := []float64{0.6, -0.4}
	for i := 0; i < n; i++ {
		eta := 0.0
		for j := 0; j < m.p; j++ {
			v := r.Norm()
			m.x[i*m.p+j] = v
			eta += v * beta[j]
		}
		gi := i % m.g
		m.group[i] = gi
		eta += 0.3 * float64(gi%7-3)
		m.y[i] = eta + 0.8*r.Norm()
	}
	if kernel {
		m.kern = kernels.NewNormalIDGLM(m.y, m.x, m.p, nil, m.group, m.g)
	}
	return m
}

func (m *normalGLM) Name() string { return "normal-glm" }
func (m *normalGLM) Dim() int     { return m.p + m.g + 1 }

func (m *normalGLM) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	return m.logPost(t, q, nil)
}

func (m *normalGLM) logPost(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	b := model.NewBuilder(t)
	beta := q[:m.p]
	u := q[m.p : m.p+m.g]
	sigma := b.Positive(q[m.p+m.g])
	b.Add(dist.NormalLPDFVarData(t, beta, ad.Const(0), ad.Const(5)))
	b.Add(dist.NormalLPDFVarData(t, u, ad.Const(0), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, sigma, 1))
	switch {
	case pre != nil:
		b.Add(m.kern.LogLikPre(t, beta, u, sigma, &pre[0]))
	case m.kern != nil:
		b.Add(m.kern.LogLik(t, beta, u, sigma))
	default:
		mu := t.ScratchVars(m.n)
		for i := range mu {
			mu[i] = t.Add(t.Dot(beta, m.x[i*m.p:(i+1)*m.p]), u[m.group[i]])
		}
		b.Add(dist.NormalLPDFVec(t, m.y, mu, sigma))
	}
	return b.Result()
}

// BatchKernels/KernelParams/LogPosteriorPre make the kernel-backed form a
// model.BatchableModel for the BENCH_5 cross-chain sweep.
func (m *normalGLM) BatchKernels() []kernels.Batcher {
	if m.kern == nil {
		return nil
	}
	return []kernels.Batcher{m.kern}
}

func (m *normalGLM) KernelParams(q []float64, dst [][]float64) {
	d := dst[0]
	copy(d[:m.p+m.g], q)
	d[m.p+m.g] = math.Exp(q[m.p+m.g]) + 0 // Positive = Lower(q, 0): exp then +0
}

func (m *normalGLM) LogPosteriorPre(t *ad.Tape, q []ad.Var, pre []kernels.BatchResult) ad.Var {
	return m.logPost(t, q, pre)
}
