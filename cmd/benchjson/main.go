// Command benchjson measures the fused-kernel gradient path against the
// legacy node-per-observation tape path for every kernel-backed registry
// workload, plus a large-N hierarchical Gaussian GLM that shows the
// asymptotic limit of the kernel layer, and writes the numbers as JSON.
//
// The output is deliberately timestamp-free so regenerating it on the
// same machine produces a reviewable diff of just the numbers.
//
// Usage:
//
//	benchjson [-o BENCH_2.json] [-scale 1.0] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"bayessuite/internal/ad"
	"bayessuite/internal/dist"
	"bayessuite/internal/kernels"
	"bayessuite/internal/model"
	"bayessuite/internal/rng"
	"bayessuite/internal/workloads"
)

// entry is one kernel-vs-tape comparison in the emitted JSON.
type entry struct {
	Workload      string  `json:"workload"`
	Dim           int     `json:"dim"`
	KernelNsOp    int64   `json:"kernel_ns_op"`
	TapeNsOp      int64   `json:"tape_ns_op"`
	KernelAllocs  int64   `json:"kernel_allocs_op"`
	TapeAllocs    int64   `json:"tape_allocs_op"`
	KernelSpeedup float64 `json:"kernel_speedup"`
}

type report struct {
	Description string  `json:"description"`
	Scale       float64 `json:"scale"`
	Entries     []entry `json:"entries"`
}

func main() {
	testing.Init() // registers test.* flags so test.benchtime can be set
	out := flag.String("o", "BENCH_2.json", "output path")
	scale := flag.Float64("scale", 1.0, "workload dataset scale")
	benchtime := flag.Duration("benchtime", 0, "per-measurement budget (0 = testing default)")
	flag.Parse()
	if *benchtime > 0 {
		// testing.Benchmark honours the flag, not an API knob.
		if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	rep := report{
		Description: "gradient-evaluation cost: fused analytic kernels vs legacy node-per-observation tape",
		Scale:       *scale,
	}
	for _, w := range workloads.All(*scale, 3) {
		if !w.UsesKernels() {
			continue
		}
		rep.Entries = append(rep.Entries, measure(w.Info.Name, w.Model, w.TapeModel()))
	}
	rep.Entries = append(rep.Entries,
		measure("normal-glm-60k", newNormalGLM(true), newNormalGLM(false)))

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d entries)\n", *out, len(rep.Entries))
}

// measure times LogDensityGrad on both paths at a fixed off-origin point.
func measure(name string, kernel, tape model.Model) entry {
	e := entry{Workload: name, Dim: kernel.Dim()}
	kns, kallocs := gradBench(kernel)
	tns, tallocs := gradBench(tape)
	e.KernelNsOp, e.KernelAllocs = kns, kallocs
	e.TapeNsOp, e.TapeAllocs = tns, tallocs
	if kns > 0 {
		e.KernelSpeedup = float64(tns) / float64(kns)
	}
	return e
}

func gradBench(m model.Model) (nsOp, allocsOp int64) {
	ev := model.NewEvaluator(m)
	q := make([]float64, ev.Dim())
	grad := make([]float64, ev.Dim())
	for i := range q {
		q[i] = 0.1 * float64(i%7)
	}
	ev.LogDensityGrad(q, grad) // reach arena high-water marks
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev.LogDensityGrad(q, grad)
		}
	})
	return r.NsPerOp(), r.AllocsPerOp()
}

// Large-N hierarchical Gaussian GLM (two covariates plus a group
// intercept, n = 60000): no per-observation transcendentals, so the
// taping overhead the kernel removes is the entire per-observation cost.
// Mirrors BenchmarkGradientNormalGLM* in internal/mcmc.
const (
	normalGLMN      = 60000
	normalGLMP      = 2
	normalGLMGroups = 300
)

type normalGLM struct {
	y, x  []float64
	group []int
	kern  *kernels.NormalIDGLM // nil on the tape path
}

func newNormalGLM(kernel bool) *normalGLM {
	r := rng.New(41)
	m := &normalGLM{
		y:     make([]float64, normalGLMN),
		x:     make([]float64, normalGLMN*normalGLMP),
		group: make([]int, normalGLMN),
	}
	beta := []float64{0.6, -0.4}
	for i := 0; i < normalGLMN; i++ {
		eta := 0.0
		for j := 0; j < normalGLMP; j++ {
			v := r.Norm()
			m.x[i*normalGLMP+j] = v
			eta += v * beta[j]
		}
		gi := i % normalGLMGroups
		m.group[i] = gi
		eta += 0.3 * float64(gi%7-3)
		m.y[i] = eta + 0.8*r.Norm()
	}
	if kernel {
		m.kern = kernels.NewNormalIDGLM(m.y, m.x, normalGLMP, nil, m.group, normalGLMGroups)
	}
	return m
}

func (m *normalGLM) Name() string { return "normal-glm-60k" }
func (m *normalGLM) Dim() int     { return normalGLMP + normalGLMGroups + 1 }

func (m *normalGLM) LogPosterior(t *ad.Tape, q []ad.Var) ad.Var {
	b := model.NewBuilder(t)
	beta := q[:normalGLMP]
	u := q[normalGLMP : normalGLMP+normalGLMGroups]
	sigma := b.Positive(q[normalGLMP+normalGLMGroups])
	b.Add(dist.NormalLPDFVarData(t, beta, ad.Const(0), ad.Const(5)))
	b.Add(dist.NormalLPDFVarData(t, u, ad.Const(0), ad.Const(1)))
	b.Add(dist.HalfCauchyLPDF(t, sigma, 1))
	if m.kern != nil {
		b.Add(m.kern.LogLik(t, beta, u, sigma))
		return b.Result()
	}
	mu := t.ScratchVars(normalGLMN)
	for i := range mu {
		mu[i] = t.Add(t.Dot(beta, m.x[i*normalGLMP:(i+1)*normalGLMP]), u[m.group[i]])
	}
	b.Add(dist.NormalLPDFVec(t, m.y, mu, sigma))
	return b.Result()
}
