package main

import (
	"time"

	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
)

// BENCH_10: speculative leapfrog prefetching. Same LLC-spilling GLM and
// lockstep HMC configuration as the BENCH_5 end-to-end comparison, now
// with the coalescer's speculation layer toggled: chains that finish
// their trajectory early leave exact-replay shadows behind, and the
// round's empty batch slots are filled with each idle chain's
// most-likely next leapfrog gradient. A bit-exact cache hit on the
// chain's next demand skips the sweep row it would otherwise cost.
//
// What can and cannot move here: rounds are straggler-bound — the
// slowest chain's leapfrog demand fixes how many sweeps a round fires,
// and the straggler is never idle, so it never benefits from its own
// cache. Committed speculative rows from the faster chains therefore
// mostly ride in sweeps whose count was already fixed; what they do
// claw back is the scheduling slack where a late-arriving request used
// to split off an extra partial-batch firing (sweeps drop a percent or
// two, measured as spec_off_sweeps vs sweeps). Single-core wall clock
// moves by about that much and no more; the real product is slot
// utilization (spec_rows ride in slots that streamed past anyway) and
// the share of gradient demand served from cache (spec_hit_rate). The
// entries below report both sides honestly: real_occupancy (demanded
// rows per sweep, the BENCH_5 metric) next to effective_occupancy
// (demanded + committed speculative rows per sweep) and slot_occupancy
// (all filled rows).
type specLockstepEntry struct {
	Chains     int     `json:"chains"`
	Iterations int     `json:"iterations"`
	SpecOffMs  float64 `json:"spec_off_ms"`
	SpecOnMs   float64 `json:"spec_on_ms"`
	// Speedup is spec-off wall clock over spec-on. Expected ≈1.0 on a
	// single core for this straggler-bound workload (see Note).
	Speedup float64 `json:"speedup"`

	// SpecOffSweeps is the baseline's fused-sweep count; Sweeps is the
	// speculating run's. The small gap (a percent or two) is the
	// scheduling slack speculation recovers — cache hits keep fast
	// chains out of rounds they would otherwise have split with a
	// late-arriving partial-batch firing; the straggler-bound floor
	// underneath cannot move.
	SpecOffSweeps int64 `json:"spec_off_sweeps"`
	Sweeps        int64 `json:"sweeps"`

	RealRows      int64 `json:"real_rows"`
	SpecRows      int64 `json:"spec_rows"`
	SpecCommitted int64 `json:"spec_committed"`
	SpecDiscarded int64 `json:"spec_discarded"`

	// SpecHitRate is committed/spec_rows — the fraction of speculated
	// rows later redeemed. Exact replay makes every *consumed*
	// prediction a hit; the ~10% discarded are banked entries the run
	// or a ring flush abandoned before the chain reached them.
	SpecHitRate float64 `json:"spec_hit_rate"`
	// RealOccupancy = real_rows/sweeps (the BENCH_5 mean_occupancy of
	// the speculating run). EffectiveOccupancy adds committed
	// speculative rows; SlotOccupancy counts every filled slot.
	RealOccupancy      float64 `json:"real_occupancy"`
	EffectiveOccupancy float64 `json:"effective_occupancy"`
	SlotOccupancy      float64 `json:"slot_occupancy"`
}

type report10 struct {
	Description string `json:"description"`
	N           int    `json:"n"`
	P           int    `json:"p"`
	Groups      int    `json:"groups"`
	DataBytes   int64  `json:"data_bytes"`
	Note        string `json:"note"`

	Lockstep []specLockstepEntry `json:"lockstep"`
}

func specReport(lockIters int) report10 {
	rep := report10{
		Description: "speculative leapfrog prefetching: empty lockstep batch slots filled with idle chains' likely-next gradients",
		N:           batchGLMN,
		P:           normalGLMP,
		Groups:      normalGLMGroups,
		DataBytes:   batchDataBytes,
		Note: "draws are bit-identical with speculation on or off (exact-replay shadows on forked RNG streams); " +
			"rounds are straggler-bound, so committed speculative rows mostly ride in sweeps whose count the " +
			"slowest chain already fixed — speculation recovers only the partial-batch scheduling slack " +
			"(spec_off_sweeps vs sweeps, a percent or two) and single-core wall clock moves by about that much; " +
			"the durable product is utilization: effective_occupancy over real_occupancy, with ~90% of " +
			"speculated rows redeemed from cache — the win that compounds once sweeps parallelize across " +
			"cores or each demanded row re-streams the data (the paper's shared-LLC setting)",
	}
	m := newNormalGLMSized(batchGLMN, true)
	for _, k := range []int{2, 4, 8} {
		rep.Lockstep = append(rep.Lockstep, specLockstepBench(m, k, lockIters))
	}
	return rep
}

// specLockstepBench runs the batched HMC lockstep sampler with
// speculation off and on — identical seeds, bit-identical draws; only
// the slot-filling schedule differs.
func specLockstepBench(m *normalGLM, chains, iters int) specLockstepEntry {
	run := func(speculate bool) (time.Duration, *mcmc.GradBatchReport) {
		cfg := mcmc.Config{
			Chains: chains, Iterations: iters, Sampler: mcmc.HMC, Seed: 19,
			IntTime: 0.25, StopRule: benchNeverStop{}, CheckInterval: iters,
			MinIterations: iters, Parallel: true,
		}
		be, ok := model.NewBatchEvaluator(m, chains)
		if !ok {
			panic("benchjson: normalGLM not batchable")
		}
		cfg.BatchGrad = be.LogDensityGradBatch
		cfg.Speculate = speculate
		cfg.BatchSpecNote = be.NoteSpeculated
		next := 0
		factory := mcmc.TargetFactory(func() mcmc.Target {
			c := next
			next++
			return be.Chain(c)
		})
		start := time.Now()
		res := mcmc.Run(cfg, factory)
		return time.Since(start), res.GradBatch
	}

	offT, offGB := run(false)
	onT, onGB := run(true)
	e := specLockstepEntry{
		Chains: chains, Iterations: iters,
		SpecOffMs: float64(offT.Microseconds()) / 1e3,
		SpecOnMs:  float64(onT.Microseconds()) / 1e3,
	}
	if onT > 0 {
		e.Speedup = float64(offT) / float64(onT)
	}
	if offGB != nil {
		e.SpecOffSweeps = offGB.Sweeps
	}
	if onGB != nil {
		e.Sweeps = onGB.Sweeps
		e.RealRows = onGB.RealRows
		e.SpecRows = onGB.SpecRows
		e.SpecCommitted = onGB.SpecCommitted
		e.SpecDiscarded = onGB.SpecDiscarded
		e.SpecHitRate = onGB.SpecHitRate()
		e.RealOccupancy = onGB.RealOccupancy()
		e.EffectiveOccupancy = onGB.EffectiveOccupancy()
		e.SlotOccupancy = onGB.SlotOccupancy()
	}
	return e
}
