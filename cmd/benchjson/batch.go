package main

import (
	"testing"
	"time"

	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
)

// BENCH_5: cross-chain gradient batching. The subject is a hierarchical
// normal GLM big enough that its data (~7.7 MB at n=240000, p=2) spills
// the L2 cache — the regime where fusing K chains' gradients into one
// cache-blocked sweep pays, because the data is streamed from the outer
// cache levels once per round instead of once per chain. At L2-resident
// sizes (the 60k model of BENCH_2) there is no traffic to amortize and
// batching is a wash; the paper's LLC-bound workloads are the former.
const (
	batchGLMN = 240000
	// batchDataBytes is the modeled data streamed by one sweep: x
	// (n×p float64), y, and the group index, the working set of the
	// gradient kernel.
	batchDataBytes = int64(batchGLMN * (normalGLMP + 2) * 8)
)

// batchEntry is one chain-count point of the gradient-layer comparison:
// a fused LogDensityGradBatch round versus the same K evaluations run
// independently, on identical parameter vectors.
type batchEntry struct {
	Chains           int     `json:"chains"`
	BatchedNsRound   int64   `json:"batched_ns_round"`
	UnbatchedNsRound int64   `json:"unbatched_ns_round"`
	Speedup          float64 `json:"speedup"`
	// SteadyAllocs is allocations per fused round after warmup (the
	// batched path must be allocation-free in steady state).
	SteadyAllocs int64 `json:"steady_allocs"`
	// Bytes of modeled data entering the cache hierarchy per round:
	// once for the fused sweep, K times for independent evaluation.
	BatchedBytesRound   int64 `json:"batched_bytes_round"`
	UnbatchedBytesRound int64 `json:"unbatched_bytes_round"`
}

// lockstepEntry is one chain-count point of the end-to-end comparison:
// full HMC lockstep runs, batched versus unbatched, same seed (the draws
// are bit-identical; only the evaluation schedule differs).
type lockstepEntry struct {
	Chains      int     `json:"chains"`
	Iterations  int     `json:"iterations"`
	BatchedMs   float64 `json:"batched_ms"`
	UnbatchedMs float64 `json:"unbatched_ms"`
	Speedup     float64 `json:"speedup"`
	// Sweeps and ChainEvals are the fused run's accounting: ChainEvals
	// gradient requests were served by Sweeps data sweeps, so the mean
	// batch occupancy is their ratio. Occupancy < Chains measures how
	// far per-chain step-size adaptation desynchronized the leapfrog
	// counts — the end-to-end ceiling on what batching can save.
	Sweeps        int64   `json:"sweeps"`
	ChainEvals    int64   `json:"chain_evals"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	// Modeled-data bytes streamed per lockstep iteration (the LLC
	// traffic proxy): dataBytes × sweeps/iterations fused, versus
	// dataBytes × chainEvals/iterations independent.
	BatchedBytesIter   int64 `json:"batched_bytes_iter"`
	UnbatchedBytesIter int64 `json:"unbatched_bytes_iter"`
}

type report5 struct {
	Description string `json:"description"`
	N           int    `json:"n"`
	P           int    `json:"p"`
	Groups      int    `json:"groups"`
	DataBytes   int64  `json:"data_bytes"`
	Note        string `json:"note"`

	GradientLayer []batchEntry    `json:"gradient_layer"`
	Lockstep      []lockstepEntry `json:"lockstep"`
}

func batchReport(lockIters int) report5 {
	rep := report5{
		Description: "cross-chain gradient batching: one cache-blocked data sweep per lockstep round vs independent per-chain evaluation",
		N:           batchGLMN,
		P:           normalGLMP,
		Groups:      normalGLMGroups,
		DataBytes:   batchDataBytes,
		Note: "gradient_layer isolates the fused sweep itself (every chain present each round); " +
			"lockstep is end to end, where per-chain step-size adaptation spreads the leapfrog counts, " +
			"so mean_occupancy < chains and the wall-clock win is bounded by it — " +
			"the bytes-per-iteration proxy improves by exactly the occupancy factor",
	}
	m := newNormalGLMSized(batchGLMN, true)
	for _, k := range []int{1, 2, 4, 8} {
		rep.GradientLayer = append(rep.GradientLayer, gradLayerBench(m, k))
	}
	for _, k := range []int{1, 2, 4, 8} {
		rep.Lockstep = append(rep.Lockstep, lockstepBench(m, k, lockIters))
	}
	return rep
}

// gradLayerBench times one fused K-chain round against K independent
// single-chain evaluations at the same (distinct per chain) points.
func gradLayerBench(m *normalGLM, k int) batchEntry {
	dim := m.Dim()
	qs := make([][]float64, k)
	grads := make([][]float64, k)
	lps := make([]float64, k)
	for c := range qs {
		qs[c] = make([]float64, dim)
		grads[c] = make([]float64, dim)
		for i := range qs[c] {
			qs[c][i] = 0.1*float64(i%7) + 0.01*float64(c)
		}
	}

	be, ok := model.NewBatchEvaluator(m, k)
	if !ok {
		panic("benchjson: normalGLM not batchable")
	}
	be.LogDensityGradBatch(qs, grads, lps) // reach arena high-water marks
	rb := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			be.LogDensityGradBatch(qs, grads, lps)
		}
	})

	evs := make([]*model.Evaluator, k)
	for c := range evs {
		evs[c] = model.NewEvaluator(m)
		evs[c].LogDensityGrad(qs[c], grads[c])
	}
	ru := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for c := range evs {
				lps[c] = evs[c].LogDensityGrad(qs[c], grads[c])
			}
		}
	})

	e := batchEntry{
		Chains:              k,
		BatchedNsRound:      rb.NsPerOp(),
		UnbatchedNsRound:    ru.NsPerOp(),
		SteadyAllocs:        rb.AllocsPerOp(),
		BatchedBytesRound:   batchDataBytes,
		UnbatchedBytesRound: int64(k) * batchDataBytes,
	}
	if e.BatchedNsRound > 0 {
		e.Speedup = float64(e.UnbatchedNsRound) / float64(e.BatchedNsRound)
	}
	return e
}

type benchNeverStop struct{}

func (benchNeverStop) ShouldStop(chains []*mcmc.Samples, iter int) bool { return false }

// lockstepBench runs the full HMC lockstep sampler with and without the
// coalescer. Identical seeds, bit-identical draws; the timing difference
// is purely the evaluation schedule.
func lockstepBench(m *normalGLM, chains, iters int) lockstepEntry {
	run := func(batched bool) (time.Duration, int64, int64) {
		cfg := mcmc.Config{
			Chains: chains, Iterations: iters, Sampler: mcmc.HMC, Seed: 19,
			IntTime: 0.25, StopRule: benchNeverStop{}, CheckInterval: iters,
			MinIterations: iters, Parallel: true,
		}
		factory := mcmc.TargetFactory(func() mcmc.Target { return model.NewEvaluator(m) })
		var be *model.BatchEvaluator
		if batched {
			b, ok := model.NewBatchEvaluator(m, chains)
			if !ok {
				panic("benchjson: normalGLM not batchable")
			}
			be = b
			cfg.BatchGrad = be.LogDensityGradBatch
			next := 0
			factory = func() mcmc.Target {
				c := next
				next++
				return be.Chain(c)
			}
		}
		start := time.Now()
		mcmc.Run(cfg, factory)
		el := time.Since(start)
		if be == nil {
			return el, 0, 0
		}
		sw, ev := be.Occupancy()
		return el, sw, ev
	}

	bt, sweeps, evals := run(true)
	ut, _, _ := run(false)
	e := lockstepEntry{
		Chains: chains, Iterations: iters,
		BatchedMs:   float64(bt.Microseconds()) / 1e3,
		UnbatchedMs: float64(ut.Microseconds()) / 1e3,
		Sweeps:      sweeps, ChainEvals: evals,
	}
	if bt > 0 {
		e.Speedup = float64(ut) / float64(bt)
	}
	if sweeps > 0 {
		e.MeanOccupancy = float64(evals) / float64(sweeps)
		e.BatchedBytesIter = batchDataBytes * sweeps / int64(iters)
		e.UnbatchedBytesIter = batchDataBytes * evals / int64(iters)
	}
	return e
}
