# BayesSuite-Go build/test entry points.
#
# `make` (or `make ci`) is the default verification flow: vet, the full
# test suite, and a race-detector pass over the concurrency-sensitive
# packages (the multi-chain runner and the streaming convergence
# detector), exercising Parallel configurations.

GO ?= go

.PHONY: ci build vet test race bench bench-runner

ci: vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full suite. internal/bench regenerates paper figures from real sampler
# runs and is by far the slowest package; give it room.
test:
	$(GO) test -timeout 900s ./...

# Race pass over the packages that run goroutines against shared state:
# the lockstep worker pool, the free-running parallel chains, and the
# streaming R-hat detector invoked from the coordinator.
race:
	$(GO) test -race ./internal/mcmc/... ./internal/elide/...

# Runner hot-path benchmarks with allocation accounting.
bench-runner:
	$(GO) test -run xxx -bench 'BenchmarkRunner' -benchmem ./internal/mcmc/

bench:
	$(GO) test -run xxx -bench . -benchmem ./...
