# BayesSuite-Go build/test entry points.
#
# `make` (or `make ci`) is the default verification flow: vet, the full
# test suite, and a race-detector pass over the concurrency-sensitive
# packages (the multi-chain runner and the streaming convergence
# detector), exercising Parallel configurations.

GO ?= go

.PHONY: ci build fmt-check vet test race fault-matrix serve-smoke cluster-smoke crash-smoke bench bench-runner bench-json

ci: fmt-check vet test race fault-matrix cluster-smoke crash-smoke

build:
	$(GO) build ./...

# Gate on canonical formatting: gofmt -l prints offending files, so any
# output fails the target.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full suite. internal/bench regenerates paper figures from real sampler
# runs and is by far the slowest package; give it room (it can need well
# over 15 minutes on a small single-core box).
test:
	$(GO) test -timeout 1800s ./...

# Race pass over the packages that run goroutines against shared state:
# the lockstep worker pool, the free-running parallel chains, the
# streaming R-hat detector invoked from the coordinator, and the bayesd
# serving layer (admission queue, worker pool, cancellation).
race:
	$(GO) test -race ./internal/mcmc/... ./internal/elide/... ./internal/serve/... ./internal/cluster/... ./internal/journal/...

# Deterministic fault-injection matrix under the race detector: every
# sampler crossed with every injectable fault kind (panic, non-finite,
# slow iteration, cancel), plus the checkpoint/resume and quarantine
# suites and the serve-layer retry tests they feed. Includes the
# batched-lockstep column (TestFaultMatrixBatched): faults injected while
# chains share fused gradient sweeps must quarantine identically, with
# bit-identical draws and checkpoint-resume replay on the batched path —
# and the cluster columns: worker loss migration, the network-chaos
# partition matrix ({HMC,NUTS} × {drop,dup,delay,partition-then-heal}),
# and coordinator crash-restart from the durable journal.
fault-matrix:
	$(GO) test -race -run 'Fault|Checkpoint|Quarantine|Retry|Resume|Injector|NetChaos' \
		./internal/fault/... ./internal/mcmc/... ./internal/serve/... ./internal/cluster/...

# End-to-end smoke test of the serving daemon: boots bayesd on a random
# port, submits a small seeded job over HTTP, polls it to completion, and
# asserts that convergence elision fired and savings were accounted.
serve-smoke:
	$(GO) run ./cmd/bayesd -smoke

# End-to-end cluster smoke under the race detector: a coordinator and two
# heterogeneous workers in one process over real HTTP. Phase 1 checks
# fleet placement, capability probes, and fleet stats; phase 2 is the
# acceptance criterion — a worker killed mid-run by an injected fault,
# the job requeued from its last streamed checkpoint onto a worker that
# did not exist before the kill, and the migrated draws compared bit for
# bit against an uninterrupted single-node run.
cluster-smoke:
	$(GO) run -race ./cmd/bayesd -cluster-smoke

# Durability smoke under the race detector: a durable coordinator runs as
# a subprocess, gets SIGKILLed mid-run (after checkpoints have streamed),
# and is restarted on the same -state-dir and address. The restarted
# coordinator must replay its journal, requeue the unfinished jobs from
# their newest fingerprint-verified checkpoints, and every job — still
# under its original ID — must finish with draws bit-identical to an
# uninterrupted run.
crash-smoke:
	$(GO) run -race ./cmd/bayesd -crash-smoke

# Runner hot-path benchmarks with allocation accounting.
bench-runner:
	$(GO) test -run xxx -bench 'BenchmarkRunner' -benchmem ./internal/mcmc/

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Regenerate BENCH_2.json (fused-kernel vs legacy-tape gradient cost for
# every kernel-backed workload), BENCH_5.json (cross-chain gradient
# batching: fused multi-chain sweeps vs per-chain evaluation, gradient
# layer and end-to-end lockstep, with the bytes-streamed traffic proxy),
# and BENCH_10.json (speculative leapfrog prefetching: lockstep runs with
# the slot-filling speculation layer off vs on — occupancy split, hit
# rate, and the straggler-bound sweep conservation check).
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_2.json -o5 BENCH_5.json -o10 BENCH_10.json
