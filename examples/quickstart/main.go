// Quickstart: define a custom Bayesian model against the public API and
// fit it with NUTS.
//
// The model is a simple Bayesian linear regression with an unknown noise
// scale — the "hello world" of probabilistic programming:
//
//	y_i ~ Normal(a + b*x_i, sigma),  a, b ~ Normal(0, 2),  sigma ~ half-Cauchy(1)
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"bayessuite"
)

// linReg implements bayessuite.Model. The unconstrained parameter vector
// is [a, b, log sigma]; the Builder's Positive transform handles the
// change of variables for sigma.
type linReg struct {
	x, y []float64
}

func (m *linReg) Name() string { return "linreg" }
func (m *linReg) Dim() int     { return 3 }

func (m *linReg) LogPosterior(t *bayessuite.Tape, q []bayessuite.Var) bayessuite.Var {
	b := bayessuite.NewBuilder(t)
	a, slope := q[0], q[1]
	sigma := b.Positive(q[2]) // sigma = exp(q[2]), Jacobian handled

	// Priors: a, b ~ N(0, 2); sigma ~ half-Cauchy(1) expressed directly.
	b.Add(t.MulConst(t.Square(a), -1.0/8))
	b.Add(t.MulConst(t.Square(slope), -1.0/8))
	b.Add(t.Neg(t.Log1p(t.Square(sigma)))) // log 1/(1+sigma^2)

	// Likelihood: y_i ~ Normal(a + b x_i, sigma).
	logSigma := t.Log(sigma)
	inv2 := t.Div(bayessuite.Const(-0.5), t.Square(sigma))
	for i, xi := range m.x {
		mu := t.Add(a, t.MulConst(slope, xi))
		res := t.AddConst(t.Neg(mu), m.y[i])
		b.Add(t.Mul(inv2, t.Square(res)))
		b.Add(t.Neg(logSigma))
	}
	return b.Result()
}

func main() {
	// Synthesize 100 observations from y = 1.5 + 0.8 x + N(0, 0.5).
	rng := rand.New(rand.NewSource(42))
	m := &linReg{}
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64() * 2
		m.x = append(m.x, x)
		m.y = append(m.y, 1.5+0.8*x+0.5*rng.NormFloat64())
	}

	res := bayessuite.Fit(m, bayessuite.Config{
		Chains:     4,
		Iterations: 1000,
		Seed:       1,
		Parallel:   true,
	})

	fmt.Printf("converged: max split R-hat = %.3f (threshold 1.1)\n\n", res.MaxRHat())
	fmt.Printf("%-10s %8s %8s   (truth)\n", "param", "mean", "sd")
	for i, s := range res.Summaries([]string{"a", "b", "log_sigma"}) {
		truth := []float64{1.5, 0.8, -0.69}[i]
		fmt.Printf("%-10s %8.3f %8.3f   (%.2f)\n", s.Name, s.Mean, s.SD, truth)
	}
	fmt.Printf("\ntotal gradient evaluations: %d across %d chains\n",
		res.TotalWork(), len(res.Chains))
}
