// Varinference: the §II-B trade-off as a program. Fits the same workload
// with NUTS (the paper's subject algorithm: asymptotically exact,
// convergence-diagnosable) and with mean-field ADVI (the optimization
// alternative: fast, biased, no guarantee), then compares work and
// posterior quality.
//
// Run: go run ./examples/varinference
package main

import (
	"fmt"

	"bayessuite"
)

func main() {
	w, err := bayessuite.NewWorkload("12cities", 1.0, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s — %s\n\n", w.Info.Name, w.Info.Application)

	// The sampling route, with the paper's convergence detection.
	nuts := bayessuite.Fit(w.Model, bayessuite.Config{
		Chains: 4, Iterations: w.Info.Iterations, Seed: 7, Elide: true,
	})
	_, at := nuts.Elided()
	fmt.Printf("NUTS:  stopped at %d iterations, R-hat %.3f, %d gradient evals\n",
		at, nuts.MaxRHat(), nuts.TotalWork())

	// The optimization route.
	advi := bayessuite.FitVI(w.Model, bayessuite.VIConfig{Iterations: 3000, Seed: 7})
	fmt.Printf("ADVI:  %d gradient evals (%.0fx cheaper), ELBO %.1f at stop\n\n",
		advi.GradEvals, float64(nuts.TotalWork())/float64(advi.GradEvals),
		advi.ELBOTrace[len(advi.ELBOTrace)-1].ELBO)

	// Compare the headline parameter: the speed-limit treatment effect.
	betaIdx := w.Model.Dim() - 1
	s := nuts.Summaries(nil)[betaIdx]
	fmt.Println("treatment effect (log rate ratio of pedestrian deaths):")
	fmt.Printf("  NUTS posterior:     %.3f +- %.3f\n", s.Mean, s.SD)
	fmt.Printf("  ADVI approximation: %.3f +- %.3f\n", advi.Mu[betaIdx], advi.SD(betaIdx))
	fmt.Printf("  generative truth:   -0.220\n\n")

	ratio := advi.SD(betaIdx) / s.SD
	fmt.Printf("ADVI/NUTS posterior-sd ratio: %.2f", ratio)
	if ratio < 1 {
		fmt.Printf("  <- the mean-field bias the paper warns about (\"no guarantees to be asymptotically exact\")")
	}
	fmt.Println()
}
