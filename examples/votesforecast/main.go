// Votesforecast: the paper's `votes` workload as an application. Fits a
// Gaussian process to 1976-2016 state-level presidential vote shares and
// forecasts 2020-2028, the way the original StanCon analysis does.
//
// Run: go run ./examples/votesforecast
package main

import (
	"fmt"
	"math"

	"bayessuite"
)

func main() {
	// A reduced-size votes instance keeps the example quick (the GP has
	// ~11 latent values per state, so the full 50-state posterior is
	// ~600-dimensional).
	w, err := bayessuite.NewWorkload("votes", 0.3, 11)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s — %s\n", w.Info.Name, w.Info.Application)

	res := bayessuite.Fit(w.Model, bayessuite.Config{
		Chains:     4,
		Iterations: 800,
		Seed:       11,
		Elide:      true, // stop at convergence
		Parallel:   true,
	})
	_, iters := res.Elided()
	fmt.Printf("fitted with NUTS: stopped at %d iterations, R-hat %.3f\n\n", iters, res.MaxRHat())

	// Posterior of the GP hyperparameters (sampled on the log scale).
	sums := res.Summaries([]string{"log_amplitude", "log_lengthscale", "log_noise"})
	for _, s := range sums[:3] {
		fmt.Printf("%-16s mean %8.3f   (natural scale %.3f)\n", s.Name, s.Mean, math.Exp(s.Mean))
	}

	fc, ok := w.Model.(bayessuite.Forecaster)
	if !ok {
		panic("votes model does not forecast")
	}

	// 2020, 2024, 2028 on the model's scaled-year axis (1976 = 0, one
	// election every 0.4 units).
	future := []float64{4.4, 4.8, 5.2}
	years := []string{"2020", "2024", "2028"}

	fmt.Println("\nforecast: posterior probability the candidate carries the state")
	fmt.Printf("%-8s %8s %8s %8s\n", "state", years[0], years[1], years[2])
	draws := res.SecondHalfDraws()
	for state := 0; state < 5; state++ {
		wins := make([]float64, len(future))
		n := 0
		for c := range draws {
			for i := 0; i < len(draws[c]); i += 8 { // thin for speed
				traj := fc.ForecastMean(draws[c][i], state, future)
				if traj == nil {
					continue
				}
				n++
				for k, v := range traj {
					if v > 0 { // logit share > 0 <=> share > 50%
						wins[k]++
					}
				}
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("state-%-2d %7.0f%% %7.0f%% %7.0f%%\n",
			state, 100*wins[0]/float64(n), 100*wins[1]/float64(n), 100*wins[2]/float64(n))
	}
}
