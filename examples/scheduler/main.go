// Scheduler: the paper's §V mechanism end-to-end through the public API.
// Calibrates the static LLC-miss predictor on the simulated suite,
// places every workload on its best platform, and quantifies the benefit
// against running everything on the Broadwell server (the paper's
// baseline, which the scheduled mix beats by ~1.16x).
//
// Run: go run ./examples/scheduler
package main

import (
	"fmt"

	"bayessuite"
)

func main() {
	fmt.Println("calibrating LLC-miss predictor on the simulated suite...")
	s, err := bayessuite.CalibrateScheduler(7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("LLC-bound above %.0f KB of modeled data\n\n", s.Predictor.ThresholdKB)

	var tBroadwell, tScheduled float64
	fmt.Printf("%-10s %12s %10s %12s %12s\n",
		"job", "modeled(KB)", "platform", "t_bdw(s)", "t_chosen(s)")
	for _, w := range bayessuite.Suite(1.0, 7) {
		// Profile with a short real sampler run, then characterize on
		// both machines.
		p := bayessuite.ProfileWorkload(w)
		mBdw := bayessuite.Characterize(p, bayessuite.Broadwell, 4)
		mSky := bayessuite.Characterize(p, bayessuite.Skylake, 4)

		a := s.Assign(w.Info.Name, w.ModeledDataBytes())
		chosen := mSky
		if a.Platform.Codename == bayessuite.Broadwell.Codename {
			chosen = mBdw
		}
		tBroadwell += mBdw.TimeSeconds
		tScheduled += chosen.TimeSeconds
		fmt.Printf("%-10s %12.1f %10s %12.1f %12.1f\n",
			w.Info.Name, a.ModeledDataKB, a.Platform.Codename,
			mBdw.TimeSeconds, chosen.TimeSeconds)
	}
	fmt.Printf("\nscheduled speedup over Broadwell-only: %.2fx (paper: 1.16x)\n",
		tBroadwell/tScheduled)
}
