// Serving walkthrough: boot the bayesd serving layer in-process, drive it
// over real HTTP with the in-process client, and watch the paper's two
// runtime mechanisms make per-job decisions:
//
//   - placement (§V): each submitted job's modeled data size runs through
//     the static LLC predictor, which routes LLC-bound jobs to the
//     large-LLC Broadwell server and the rest to the high-frequency
//     Skylake desktop;
//   - elision (§VI): each job samples under runtime convergence
//     detection, reports its live R̂ trajectory, and stops as soon as
//     R̂ < 1.1, banking the unexecuted iterations as savings.
//
// Run: go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"bayessuite/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serving example:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Calibrate the placement predictor the way the paper builds
	// Fig. 3: the whole suite at three dataset scales through the cache
	// simulator.
	fmt.Println("calibrating LLC predictor on the BayesSuite cache simulations...")
	pts, err := serve.SuiteCalibration(7)
	if err != nil {
		return err
	}
	srv := serve.NewServer(serve.Config{
		QueueCap:          16,
		Workers:           2,
		CalibrationPoints: pts,
	})
	if _, note := srv.FrequencyFirst(); true {
		fmt.Printf("predictor: %s\n\n", note)
	}

	// 2. Serve the HTTP API on a random local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := fmt.Sprintf("http://%s", ln.Addr())
	fmt.Printf("bayesd serving on %s\n\n", base)

	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// 3. Submit two jobs from opposite ends of the working-set spectrum:
	// tickets (the suite's most LLC-hungry model) and 12cities (small).
	specs := []serve.JobSpec{
		{Workload: "tickets", Scale: 0.5, Iterations: 400, Seed: 7},
		{Workload: "12cities", Scale: 0.25, Iterations: 2000, Seed: 7},
	}
	var ids []string
	for _, spec := range specs {
		st, err := client.Submit(ctx, spec)
		if err != nil {
			return fmt.Errorf("submit %s: %w", spec.Workload, err)
		}
		fmt.Printf("submitted %-10s as %s (budget %d iterations × %d chains)\n",
			spec.Workload, st.ID, st.Budget, st.Spec.Chains)
		ids = append(ids, st.ID)
	}
	fmt.Println()

	// 4. Poll both to completion, printing placement and the R̂ tail.
	for _, id := range ids {
		final, err := client.Wait(ctx, id, 100*time.Millisecond)
		if err != nil {
			return fmt.Errorf("wait %s: %w", id, err)
		}
		fmt.Printf("%s: %s (%s)\n", id, final.State, final.Spec.Workload)
		if p := final.Placement; p != nil {
			fmt.Printf("  placed on %-9s — %s\n", p.Platform, p.Reason)
		}
		if n := len(final.RHatTrace); n > 0 {
			cp := final.RHatTrace[n-1]
			fmt.Printf("  last convergence check: R̂ = %.3f at iteration %d (%d checks)\n",
				cp.RHat, cp.Iteration, n)
		}
		if final.Elided {
			fmt.Printf("  elided: stopped at %d/%d iterations, saving %d iterations ≈ %.1f simulated J\n",
				final.Progress, final.Budget, final.SavedIterations, final.SavedJoules)
		} else {
			fmt.Printf("  ran the full %d-iteration budget\n", final.Budget)
		}
		res, err := client.Result(ctx, id)
		if err != nil {
			return fmt.Errorf("result %s: %w", id, err)
		}
		limit := len(res.Summaries)
		if limit > 4 {
			limit = 4
		}
		fmt.Printf("  posterior (first %d of %d params): ", limit, len(res.Summaries))
		for _, s := range res.Summaries[:limit] {
			name := s.Name
			if name == "" {
				name = "q"
			}
			fmt.Printf("%s=%.3f±%.3f  ", name, s.Mean, s.SD)
		}
		fmt.Println()
	}

	// 5. Service-level accounting.
	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nstats: %d done, queue %d/%d; elision saved %d iterations ≈ %.1f simulated J total\n",
		stats.Done, stats.QueueDepth, stats.QueueCap, stats.SavedIterations, stats.SavedJoules)
	return srv.Shutdown(ctx)
}
