// Speedlimits: the paper's Figure 5 narrative as a program. Runs the
// 12cities workload (does lowering speed limits save pedestrian lives?)
// twice — once to the user-configured 2000 iterations, once with runtime
// convergence detection — and shows that elision preserves the scientific
// conclusion while cutting most of the work.
//
// Run: go run ./examples/speedlimits
package main

import (
	"fmt"
	"math"

	"bayessuite"
)

func main() {
	w, err := bayessuite.NewWorkload("12cities", 1.0, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s — %s\n", w.Info.Name, w.Info.Application)
	fmt.Printf("user setting: %d chains x %d iterations\n\n", w.Info.Chains, w.Info.Iterations)

	// Full run at the user setting.
	full := bayessuite.Fit(w.Model, bayessuite.Config{
		Chains:     w.Info.Chains,
		Iterations: w.Info.Iterations,
		Seed:       7,
		Parallel:   true,
	})

	// Elided run: stop as soon as R-hat < 1.1.
	elided := bayessuite.Fit(w.Model, bayessuite.Config{
		Chains:     w.Info.Chains,
		Iterations: w.Info.Iterations,
		Seed:       7,
		Elide:      true,
	})
	_, stoppedAt := elided.Elided()

	fmt.Printf("full run:    %d iterations, R-hat %.3f, %d gradient evals\n",
		full.Result.Iterations, full.MaxRHat(), full.TotalWork())
	fmt.Printf("elided run:  %d iterations, R-hat %.3f, %d gradient evals (%.0f%% of iterations elided)\n\n",
		stoppedAt, elided.MaxRHat(), elided.TotalWork(),
		100*(1-float64(stoppedAt)/float64(w.Info.Iterations)))

	// The scientific question: the treatment effect beta (last parameter)
	// is the log rate ratio of pedestrian deaths after lowering limits.
	betaIdx := w.Model.Dim() - 1
	report := func(label string, r *bayessuite.Result) {
		s := r.Summaries(nil)[betaIdx]
		fmt.Printf("%-8s beta = %.3f +- %.3f  =>  lowering limits changes fatalities by %.0f%% (90%% CI %.0f%%..%.0f%%)\n",
			label, s.Mean, s.SD,
			100*(math.Exp(s.Mean)-1), 100*(math.Exp(s.Q05)-1), 100*(math.Exp(s.Q95)-1))
	}
	report("full:", full)
	report("elided:", elided)
	fmt.Println("\n(generative truth: beta = -0.22, i.e. ~20% fewer deaths)")

	if elided.Detector != nil {
		fmt.Printf("\nconvergence detection overhead: %v over %d checks\n",
			elided.Detector.Overhead, len(elided.Detector.Trace))
	}
}
