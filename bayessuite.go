// Package bayessuite is the public API of BayesSuite-Go, a from-scratch
// Go reproduction of "Demystifying Bayesian Inference Workloads" (ISPASS
// 2019). It bundles:
//
//   - the ten BayesSuite workloads (Table I) with seeded synthetic data;
//   - a Stan-style inference stack: reverse-mode autodiff, constrained
//     parameter transforms, and Metropolis-Hastings / HMC / NUTS samplers;
//   - convergence diagnostics (split R-hat, ESS, Gaussian KL) and the
//     paper's computation-elision mechanism (runtime convergence
//     detection, §VI);
//   - the simulated Skylake/Broadwell hardware substrate (Table II) with
//     a trace-driven LLC model, timing, and energy (§IV-§V);
//   - the static LLC-miss predictor and platform scheduler (§V).
//
// Quick start:
//
//	w, _ := bayessuite.NewWorkload("12cities", 1.0, 7)
//	res := bayessuite.Fit(w.Model, bayessuite.Config{Elide: true})
//	fmt.Println(res.MaxRHat(), res.Iterations)
//
// Custom models implement the Model interface; see examples/quickstart.
package bayessuite

import (
	"io"

	"bayessuite/internal/ad"
	"bayessuite/internal/diag"
	"bayessuite/internal/elide"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/perf"
	"bayessuite/internal/sched"
	"bayessuite/internal/stanio"
	"bayessuite/internal/vi"
	"bayessuite/internal/workloads"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public surface without duplicating them.
type (
	// Model is a Bayesian model over an unconstrained parameter vector;
	// see the model package for the Builder transforms used to implement
	// one.
	Model = model.Model
	// Builder accumulates a log posterior with Stan-style constrained
	// parameter transforms.
	Builder = model.Builder
	// Tape is the reverse-mode autodiff tape models record onto.
	Tape = ad.Tape
	// Var is a tape-tracked value.
	Var = ad.Var
	// Workload couples a Table I workload's model, data, and metadata.
	Workload = workloads.Workload
	// WorkloadInfo is the Table I row.
	WorkloadInfo = workloads.Info
	// Summary is one parameter's posterior summary.
	Summary = diag.Summary
	// Platform describes one Table II machine.
	Platform = hw.Platform
	// Metrics is a simulated hardware characterization.
	Metrics = hw.Metrics
	// HWProfile is a measured workload profile for the hardware model.
	HWProfile = hw.Profile
	// Assignment is a scheduling decision.
	Assignment = sched.Assignment
	// Forecaster is implemented by workload models that support
	// posterior-predictive forecasting (currently votes).
	Forecaster = workloads.Forecaster
	// Scheduler places jobs on the Skylake/Broadwell platform pair.
	Scheduler = sched.Scheduler
)

// NewBuilder starts a log-posterior builder over tape t.
func NewBuilder(t *Tape) *Builder { return model.NewBuilder(t) }

// Const wraps a plain float as an untracked autodiff constant.
func Const(v float64) Var { return ad.Const(v) }

// The simulated experiment platforms (Table II).
var (
	Skylake   = hw.Skylake
	Broadwell = hw.Broadwell
)

// WorkloadNames lists the ten BayesSuite workloads in Table I order.
func WorkloadNames() []string { return workloads.Names() }

// NewWorkload builds a named workload with synthetic data at the given
// scale in (0, 1] and seed.
func NewWorkload(name string, scale float64, seed uint64) (*Workload, error) {
	return workloads.New(name, scale, seed)
}

// Suite builds all ten workloads.
func Suite(scale float64, seed uint64) []*Workload {
	return workloads.All(scale, seed)
}

// Sampler selects the inference algorithm.
type Sampler string

// Samplers supported by Fit.
const (
	NUTS               Sampler = "nuts"
	HMC                Sampler = "hmc"
	MetropolisHastings Sampler = "mh"
)

// Config controls Fit. The zero value means: NUTS, 4 chains, 2000
// iterations, no elision.
type Config struct {
	// Chains is the number of Markov chains (default 4).
	Chains int
	// Iterations is the per-chain iteration budget (default 2000).
	Iterations int
	// Sampler selects the algorithm (default NUTS).
	Sampler Sampler
	// Seed drives all randomness (default 7).
	Seed uint64
	// Elide enables runtime convergence detection: sampling stops as
	// soon as split R-hat over the second half of the draws falls below
	// 1.1 (the paper's computation elision).
	Elide bool
	// Parallel runs chains on separate goroutines. With Elide the chains
	// advance in lockstep rounds (the convergence check needs aligned
	// draws) but each round's steps still run concurrently.
	Parallel bool
}

// Result wraps a finished run.
type Result struct {
	*mcmc.Result
	// Detector is non-nil when Elide was set.
	Detector *elide.Detector
}

// Fit runs MCMC on the model.
func Fit(m Model, cfg Config) *Result {
	mc := mcmc.Config{
		Chains:     cfg.Chains,
		Iterations: cfg.Iterations,
		Seed:       cfg.Seed,
		Parallel:   cfg.Parallel,
	}
	if mc.Seed == 0 {
		mc.Seed = 7
	}
	switch cfg.Sampler {
	case HMC:
		mc.Sampler = mcmc.HMC
	case MetropolisHastings:
		mc.Sampler = mcmc.MetropolisHastings
	default:
		mc.Sampler = mcmc.NUTS
	}
	out := &Result{}
	if cfg.Elide {
		out.Detector = elide.NewDetector()
		mc.StopRule = out.Detector
	}
	out.Result = mcmc.Run(mc, func() mcmc.Target { return model.NewEvaluator(m) })
	return out
}

// MaxRHat returns the maximum split R-hat over the second half of the
// draws (the paper's convergence criterion; < 1.1 indicates convergence).
// It reads the flat sample buffers column-wise, with no copying.
func (r *Result) MaxRHat() float64 {
	return diag.MaxSplitRHatCols(r.SecondHalfColumns())
}

// Summaries computes per-parameter posterior summaries from the second
// half of the draws. names may be nil.
func (r *Result) Summaries(names []string) []Summary {
	return diag.Summarize(r.SecondHalfDraws(), names)
}

// Elided reports whether convergence detection stopped the run early,
// and at which iteration.
func (r *Result) Elided() (bool, int) {
	return r.Result.Elided, r.Result.Iterations
}

// WriteDraws writes the post-warmup draws in Stan-style CSV (chain__,
// iter__, then one column per parameter). names may be nil.
func (r *Result) WriteDraws(w io.Writer, names []string) error {
	return stanio.WriteDraws(w, r.SecondHalfDraws(), names)
}

// VIConfig configures a variational fit (see internal/vi).
type VIConfig = vi.Config

// VIResult is a fitted mean-field Gaussian approximation.
type VIResult = vi.Result

// FitVI runs automatic differentiation variational inference (mean-field
// ADVI) on the model — the optimization-based alternative the paper
// contrasts with sampling (§II-B): much cheaper per result, but biased
// (no asymptotic exactness) and without an R-hat-style convergence
// guarantee.
func FitVI(m Model, cfg VIConfig) *VIResult {
	return vi.Fit(model.NewEvaluator(m), cfg)
}

// ProfileWorkload measures a workload's hardware profile with a short
// real sampler run (see internal/perf).
func ProfileWorkload(w *Workload) *HWProfile {
	return perf.Measure(w, perf.Options{})
}

// Characterize runs the simulated hardware model for a profile on a
// platform with the given core count.
func Characterize(p *HWProfile, plat Platform, cores int) Metrics {
	return hw.Characterize(p, plat, cores)
}

// CalibrateScheduler fits the paper's static LLC-miss predictor on the
// suite's simulated 4-core miss rates (the Fig. 3 procedure) and returns
// a ready scheduler over the Skylake/Broadwell pair.
func CalibrateScheduler(seed uint64) (*sched.Scheduler, error) {
	var pts []sched.Point
	for _, name := range workloads.Names() {
		for _, frac := range []float64{1, 0.5, 0.25} {
			w, err := workloads.New(name, frac, seed)
			if err != nil {
				return nil, err
			}
			p := perf.Static(w)
			pts = append(pts, sched.Point{
				Name:          name,
				ModeledDataKB: float64(w.ModeledDataBytes()) / 1024,
				LLCMPKI4Core:  hw.SimulateLLC(p, hw.Skylake, 4),
			})
		}
	}
	pred, err := sched.Fit(pts)
	if err != nil {
		return nil, err
	}
	return sched.NewScheduler(pred), nil
}
