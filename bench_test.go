package bayessuite

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the same rows/series), plus the ablation
// benches DESIGN.md calls out and the paper's §VI-A overhead measurement.
//
// The figure benchmarks share a fast-mode bench.Harness whose sampler
// runs and profiles are cached after first use, so the timed loop
// measures regenerating the experiment from those runs. Headline numbers
// are attached with b.ReportMetric so `go test -bench` output records the
// reproduced values next to the timings.

import (
	"io"
	"sync"
	"testing"
	"time"

	"bayessuite/internal/bench"
	"bayessuite/internal/diag"
	"bayessuite/internal/elide"
	"bayessuite/internal/hw"
	"bayessuite/internal/mcmc"
	"bayessuite/internal/model"
	"bayessuite/internal/perf"
	"bayessuite/internal/rng"
	"bayessuite/internal/workloads"
)

var (
	benchOnce    sync.Once
	benchHarness *bench.Harness
)

func figHarness(b *testing.B) *bench.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchHarness = bench.New(bench.Fast())
	})
	return benchHarness
}

// ---- Tables ----

func BenchmarkTable1(b *testing.B) {
	h := figHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RenderTable1(h, io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	h := figHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RenderTable2(h, io.Discard)
	}
}

// ---- Figures ----

func BenchmarkFig1SingleCoreStats(b *testing.B) {
	h := figHarness(b)
	rows := h.Fig1() // warm the caches before timing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = h.Fig1()
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Name == "votes" {
			b.ReportMetric(r.IPC, "votes-IPC")
		}
		if r.Name == "tickets" {
			b.ReportMetric(r.LLCMPKI, "tickets-LLC-MPKI@1")
		}
	}
}

func BenchmarkFig2MulticoreScaling(b *testing.B) {
	h := figHarness(b)
	rows := h.Fig2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = h.Fig2()
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Name == "tickets" {
			b.ReportMetric(r.LLCMPKI[2], "tickets-LLC-MPKI@4")
			b.ReportMetric(r.Speedup[2], "tickets-speedup@4")
		}
	}
}

func BenchmarkFig3LLCPrediction(b *testing.B) {
	h := figHarness(b)
	res, err := h.Fig3()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = h.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Predictor.ThresholdKB, "threshold-KB")
	b.ReportMetric(100*res.MaxRelErrAbove1, "max-rel-err-pct")
}

func BenchmarkFig4PlatformChoice(b *testing.B) {
	h := figHarness(b)
	res, err := h.Fig4()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = h.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.ScheduledSpeedup, "scheduled-speedup(paper:1.16)")
}

func BenchmarkFig5Convergence(b *testing.B) {
	h := figHarness(b)
	res := h.Fig5()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = h.Fig5()
	}
	b.StopTimer()
	b.ReportMetric(100*res.IterationSavings, "iters-elided-pct(paper:70)")
	b.ReportMetric(res.ChainImbalance, "chain-imbalance(paper:1.7)")
}

func BenchmarkFig6DSE(b *testing.B) {
	h := figHarness(b)
	res := h.Fig6()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = h.Fig6()
	}
	b.StopTimer()
	if len(res) > 0 && res[0].Space.User.EnergyJoules > 0 {
		b.ReportMetric(res[0].Space.Oracle.EnergyJoules/res[0].Space.User.EnergyJoules,
			"ad-oracle/user-energy")
	}
}

func BenchmarkFig7EnergySavings(b *testing.B) {
	h := figHarness(b)
	rows := h.Fig7()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = h.Fig7()
	}
	b.StopTimer()
	var avg float64
	for _, r := range rows {
		avg += r.SavingsPct
	}
	b.ReportMetric(avg/float64(len(rows)), "avg-energy-saving-pct(paper:70)")
}

func BenchmarkFig8OverallSpeedup(b *testing.B) {
	h := figHarness(b)
	res, err := h.Fig8()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = h.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(res.AverageSpeedup, "avg-speedup(paper:5.8)")
	b.ReportMetric(res.OracleAverage, "oracle-speedup(paper:6.2)")
}

// ---- §VI-A overhead: the runtime R-hat computation ----

// BenchmarkRHatOverhead reproduces the paper's worst-case overhead
// measurement: R-hat over 1000 retained draws x 4 chains for the
// largest-dimension workload in the suite (the paper reports 0.06 s on a
// Skylake core for its C++ implementation).
func BenchmarkRHatOverhead(b *testing.B) {
	r := rng.New(1)
	const chains, kept = 4, 1000
	dim := 0
	for _, w := range workloads.All(0.25, 1) {
		if d := w.Model.Dim(); d > dim {
			dim = d
		}
	}
	draws := make([][][]float64, chains)
	for c := range draws {
		for i := 0; i < kept; i++ {
			v := make([]float64, dim)
			for d := range v {
				v[d] = r.Norm()
			}
			draws[c] = append(draws[c], v)
		}
	}
	b.ResetTimer()
	var v float64
	for i := 0; i < b.N; i++ {
		v = diag.MaxRHat(draws)
	}
	b.StopTimer()
	b.ReportMetric(v, "rhat")
}

// ---- Ablations (DESIGN.md) ----

// ablTarget builds a moderately correlated Gaussian target whose
// conditioning gives the mass matrix something to do.
type ablTarget struct{ scales []float64 }

func newAblTarget() *ablTarget {
	return &ablTarget{scales: []float64{0.05, 0.3, 1, 3, 10}}
}
func (t *ablTarget) Dim() int { return len(t.scales) }
func (t *ablTarget) LogDensityGrad(q, grad []float64) float64 {
	lp := 0.0
	for i, s := range t.scales {
		z := q[i] / s
		lp += -0.5 * z * z
		grad[i] = -z / s
	}
	return lp
}
func (t *ablTarget) LogDensity(q []float64) float64 {
	g := make([]float64, len(q))
	return t.LogDensityGrad(q, g)
}

// BenchmarkAblationMassMatrix compares NUTS gradient evaluations with and
// without diagonal mass-matrix adaptation on a badly scaled target.
func BenchmarkAblationMassMatrix(b *testing.B) {
	run := func(disable bool) int64 {
		res := mcmc.Run(mcmc.Config{
			Chains: 4, Iterations: 600, Seed: 9,
			DisableMassAdaptation: disable,
		}, func() mcmc.Target { return newAblTarget() })
		return res.TotalWork()
	}
	var with, without int64
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(float64(with), "gradevals-adapted")
	b.ReportMetric(float64(without), "gradevals-unit-metric")
	b.ReportMetric(float64(without)/float64(with), "work-ratio")
}

// BenchmarkAblationSampler compares MH, HMC and NUTS gradient/density
// evaluations to convergence (R-hat < 1.1) on the 12cities posterior.
func BenchmarkAblationSampler(b *testing.B) {
	w, err := workloads.New("12cities", 0.25, 3)
	if err != nil {
		b.Fatal(err)
	}
	budget := map[mcmc.SamplerKind]int{
		mcmc.NUTS: 2000, mcmc.HMC: 3000, mcmc.MetropolisHastings: 60000,
	}
	for i := 0; i < b.N; i++ {
		for _, kind := range []mcmc.SamplerKind{mcmc.NUTS, mcmc.HMC, mcmc.MetropolisHastings} {
			det := elide.NewDetector()
			res := mcmc.Run(mcmc.Config{
				Chains: 4, Iterations: budget[kind], Sampler: kind, Seed: 4,
				StopRule: det, CheckInterval: 100, MinIterations: 200, Parallel: true,
			}, func() mcmc.Target { return model.NewEvaluator(w.Model) })
			b.ReportMetric(float64(res.TotalWork()), kind.String()+"-evals-to-converge")
			if !res.Elided {
				b.ReportMetric(1, kind.String()+"-did-not-converge")
			}
		}
	}
}

// BenchmarkAblationElisionInterval sweeps the convergence-check interval:
// frequent checks waste less sampling but cost more diagnostic time.
func BenchmarkAblationElisionInterval(b *testing.B) {
	w, err := workloads.New("12cities", 0.25, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, interval := range []int{10, 50, 100} {
			det := elide.NewDetector()
			res := mcmc.Run(mcmc.Config{
				Chains: 4, Iterations: 2000, Seed: 4,
				StopRule: det, CheckInterval: interval, MinIterations: 100, Parallel: true,
			}, func() mcmc.Target { return model.NewEvaluator(w.Model) })
			label := "check" + itoa(interval)
			b.ReportMetric(float64(res.Iterations), label+"-stop-iter")
			b.ReportMetric(float64(det.Overhead)/float64(time.Millisecond), label+"-overhead-ms")
		}
	}
}

// BenchmarkAblationCacheModel compares the trace-driven LLC simulation
// against the closed-form occupancy model MPKI = potential * max(0,
// 1 - C/(n*R)) that one might use instead; the reported metric is the
// relative disagreement for the tickets-like profile where it matters.
func BenchmarkAblationCacheModel(b *testing.B) {
	w, err := workloads.New("tickets", 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	p := perf.Static(w)
	var sim, analytic float64
	for i := 0; i < b.N; i++ {
		sim = hw.SimulateLLC(p, hw.Skylake, 4)
		// Closed form: all stream lines miss at the occupancy-derived rate.
		potential := 2 * float64(p.StreamBytes()) / 64 / (p.InstrPerEval() / 1000)
		press := 1 - float64(hw.Skylake.LLCBytes)/float64(4*p.ResidentBytes())
		if press < 0 {
			press = 0
		}
		analytic = potential * press
	}
	b.ReportMetric(sim, "sim-MPKI")
	b.ReportMetric(analytic, "analytic-MPKI")
}

// ---- Microbenchmarks of the core substrate ----

func BenchmarkGradientEval(b *testing.B) {
	for _, name := range []string{"12cities", "ad", "votes", "tickets", "ode"} {
		w, err := workloads.New(name, 1, 3)
		if err != nil {
			b.Fatal(err)
		}
		ev := model.NewEvaluator(w.Model)
		q := make([]float64, ev.Dim())
		g := make([]float64, ev.Dim())
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev.LogDensityGrad(q, g)
			}
			b.ReportMetric(float64(ev.TapeEdges), "tape-edges")
		})
	}
}

func BenchmarkNUTSIteration(b *testing.B) {
	w, err := workloads.New("12cities", 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	res := mcmc.Run(mcmc.Config{Chains: 1, Iterations: 50, Seed: 2},
		func() mcmc.Target { return model.NewEvaluator(w.Model) })
	_ = res
	b.ResetTimer()
	iters := 0
	for iters < b.N {
		r := mcmc.Run(mcmc.Config{Chains: 1, Iterations: 100, Seed: uint64(iters + 3)},
			func() mcmc.Target { return model.NewEvaluator(w.Model) })
		iters += r.Iterations
	}
}

func BenchmarkCacheSimAccess(b *testing.B) {
	c := hw.NewCache(8<<20, 16, 64, hw.RandomReplacement)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64 % (32 << 20))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
