package bayessuite

import (
	"math"
	"testing"
)

// tinyModel is a 2-D Gaussian through the public API.
type tinyModel struct{}

func (tinyModel) Name() string { return "tiny" }
func (tinyModel) Dim() int     { return 2 }
func (tinyModel) LogPosterior(t *Tape, q []Var) Var {
	b := NewBuilder(t)
	b.Add(t.MulConst(t.Square(t.AddConst(q[0], -1)), -0.5))
	b.Add(t.MulConst(t.Square(q[1]), -0.5))
	return b.Result()
}

func TestFitPublicAPI(t *testing.T) {
	res := Fit(tinyModel{}, Config{Chains: 4, Iterations: 800, Seed: 3, Parallel: true})
	if r := res.MaxRHat(); r > 1.1 {
		t.Errorf("R-hat %.3f", r)
	}
	sums := res.Summaries([]string{"x", "y"})
	if math.Abs(sums[0].Mean-1) > 0.15 || math.Abs(sums[1].Mean) > 0.15 {
		t.Errorf("posterior means: %.3f, %.3f", sums[0].Mean, sums[1].Mean)
	}
	if elided, _ := res.Elided(); elided {
		t.Error("no elision requested")
	}
}

func TestFitWithElision(t *testing.T) {
	res := Fit(tinyModel{}, Config{Chains: 4, Iterations: 4000, Seed: 3, Elide: true})
	elided, at := res.Elided()
	if !elided {
		t.Fatal("easy Gaussian should converge early")
	}
	if at >= 4000 || at < 100 {
		t.Errorf("stopped at %d", at)
	}
	if res.Detector == nil || len(res.Detector.Trace) == 0 {
		t.Error("detector trace missing")
	}
}

func TestFitSamplerSelection(t *testing.T) {
	for _, s := range []Sampler{NUTS, HMC, MetropolisHastings} {
		res := Fit(tinyModel{}, Config{Chains: 2, Iterations: 300, Seed: 5, Sampler: s})
		if len(res.Chains) != 2 || res.Chains[0].Samples.Len() != 300 {
			t.Errorf("%s: wrong run shape", s)
		}
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 10 {
		t.Fatalf("%d workloads", len(names))
	}
	w, err := NewWorkload("butterfly", 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Info.Name != "butterfly" || w.Model.Dim() == 0 {
		t.Error("workload malformed")
	}
	if _, err := NewWorkload("nope", 1, 1); err == nil {
		t.Error("expected error")
	}
	if len(Suite(0.25, 2)) != 10 {
		t.Error("suite incomplete")
	}
}

func TestCharacterizePublicAPI(t *testing.T) {
	w, err := NewWorkload("12cities", 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileWorkload(w)
	m := Characterize(p, Skylake, 4)
	if m.IPC <= 0 || m.TimeSeconds <= 0 || m.EnergyJoules <= 0 {
		t.Errorf("degenerate metrics: %+v", m)
	}
	if m.Platform != "Skylake" || m.Cores != 4 {
		t.Errorf("metrics metadata: %+v", m)
	}
}

func TestVotesForecasterInterface(t *testing.T) {
	w, err := NewWorkload("votes", 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	fc, ok := w.Model.(Forecaster)
	if !ok {
		t.Fatal("votes does not implement Forecaster")
	}
	q := make([]float64, w.Model.Dim())
	out := fc.ForecastMean(q, 0, []float64{4.4, 4.8})
	if len(out) != 2 {
		t.Errorf("forecast length %d", len(out))
	}
	for _, v := range out {
		if math.IsNaN(v) {
			t.Error("NaN forecast")
		}
	}
}
