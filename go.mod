module bayessuite

go 1.22
